"""Property-based tests: scatter semantics under arbitrary streams.

The write coalescer merges duplicate writes within windows and relies
on DRAM hazard ordering across warps — these tests check that the net
memory image always equals numpy's sequential scatter (last write
wins), for arbitrary index/value streams and window sizes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axipack import fast_indirect_scatter, run_indirect_scatter
from repro.config import mlp_config, seq_config


@st.composite
def scatter_streams(draw):
    count = draw(st.integers(min_value=1, max_value=250))
    ncols = draw(st.integers(min_value=1, max_value=400))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    kind = draw(st.sampled_from(["random", "dense_dup", "walk"]))
    if kind == "random":
        idx = rng.integers(0, ncols, count)
    elif kind == "dense_dup":
        idx = rng.integers(0, max(1, ncols // 16), count)
    else:
        idx = np.clip(np.cumsum(rng.integers(-3, 4, count)) + ncols // 2,
                      0, ncols - 1)
    values = rng.normal(size=count)
    return idx.astype(np.uint32), values


@given(scatter_streams(), st.sampled_from([8, 16, 64]))
@settings(max_examples=30, deadline=None)
def test_scatter_equals_numpy_semantics(stream, window):
    idx, values = stream
    # verify=True raises on any divergence from target[idx] = values.
    metrics = run_indirect_scatter(idx, values, mlp_config(window))
    assert metrics.count == len(idx)
    assert metrics.elem_txns <= len(idx)


@given(scatter_streams())
@settings(max_examples=15, deadline=None)
def test_sequential_scatter_also_exact(stream):
    idx, values = stream
    run_indirect_scatter(idx, values, seq_config(16))


@given(scatter_streams(), st.sampled_from([8, 32, 128]))
@settings(max_examples=30, deadline=None)
def test_fast_scatter_counts_bounded(stream, window):
    idx, _ = stream
    metrics = fast_indirect_scatter(idx, mlp_config(window))
    assert 0 <= metrics.elem_txns <= len(idx)
    distinct_blocks = len(np.unique(idx.astype(np.int64) * 8 // 64))
    # Can never use fewer wide writes than distinct blocks... except a
    # fully-carried single-block stream flushed once.
    assert metrics.elem_txns >= min(1, distinct_blocks)
