"""Synthetic structure generators: shapes, determinism, locality."""

import numpy as np
import pytest

from repro.errors import SparseFormatError
from repro.sparse import generators


def _window_block_ratio(matrix, window=256, block_elems=8):
    """Mean distinct 64 B blocks per window of the CSR index stream —
    the statistic the coalescer responds to (lower = more coalescing)."""
    stream = matrix.index_stream().astype(np.int64) // block_elems
    if len(stream) < window:
        return 1.0
    chunks = len(stream) // window
    distinct = [
        len(np.unique(stream[i * window : (i + 1) * window])) for i in range(chunks)
    ]
    return float(np.mean(distinct)) / window


class TestDeterminismAndShape:
    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (generators.banded_fem, dict(avg_row=20, band=300)),
            (generators.circuit, dict(avg_row=4)),
            (generators.mesh, dict(avg_row=6, spread=100)),
            (generators.kkt, dict(avg_row=10, band=80)),
            (generators.dense_block, dict(avg_row=40)),
            (generators.random_uniform, dict(avg_row=8)),
        ],
    )
    def test_square_deterministic(self, builder, kwargs):
        a = builder(2000, seed=5, **kwargs)
        b = builder(2000, seed=5, **kwargs)
        assert a.shape == (2000, 2000)
        assert np.array_equal(a.col_idx, b.col_idx)
        assert np.array_equal(a.val, b.val)

    def test_different_seeds_differ(self):
        a = generators.banded_fem(1000, seed=1)
        b = generators.banded_fem(1000, seed=2)
        assert not np.array_equal(a.col_idx, b.col_idx)

    def test_avg_row_roughly_matches(self):
        m = generators.banded_fem(4000, avg_row=35.0, band=600)
        assert 20 <= m.avg_row_length <= 45

    def test_diagonal_present(self):
        m = generators.circuit(500, avg_row=4)
        dense = m.to_dense()
        assert np.count_nonzero(np.diag(dense)) == 500

    def test_invalid_size_rejected(self):
        with pytest.raises(SparseFormatError):
            generators.banded_fem(0)


class TestStencil:
    def test_27_point_interior_degree(self):
        m = generators.stencil(6, 6, 6, points=27)
        assert m.shape == (216, 216)
        lengths = m.row_lengths()
        # interior points have exactly 27 neighbours
        assert lengths.max() == 27
        # corner points have 8
        assert lengths.min() == 8

    def test_9_point_2d(self):
        m = generators.stencil(8, 8, 1, points=9)
        assert m.row_lengths().max() == 9
        assert m.row_lengths().min() == 4

    def test_5_point_2d(self):
        m = generators.stencil(8, 8, 1, points=5)
        assert m.row_lengths().max() == 5

    def test_symmetric_pattern(self):
        m = generators.stencil(5, 5, 5, points=27)
        dense = (m.to_dense() != 0).astype(int)
        assert np.array_equal(dense, dense.T)

    def test_invalid_points_rejected(self):
        with pytest.raises(SparseFormatError):
            generators.stencil(4, 4, 4, points=7)


class TestLocalityOrdering:
    """The structure classes must order by index locality the way the
    paper's matrix classes do: dense bands coalesce best, circuits
    worst."""

    def test_dense_block_beats_banded(self):
        dense = generators.dense_block(3000, avg_row=100, seed=0)
        banded = generators.banded_fem(3000, avg_row=35, band=1500, seed=0)
        assert _window_block_ratio(dense) < _window_block_ratio(banded)

    def test_banded_beats_random(self):
        banded = generators.banded_fem(3000, avg_row=35, band=1500, seed=0)
        rand = generators.random_uniform(3000, avg_row=35, seed=0)
        assert _window_block_ratio(banded) < _window_block_ratio(rand)

    def test_circuit_has_poor_locality(self):
        circ = generators.circuit(20000, avg_row=4, seed=0)
        dense = generators.dense_block(3000, avg_row=100, seed=0)
        assert _window_block_ratio(circ) > 1.5 * _window_block_ratio(dense)
