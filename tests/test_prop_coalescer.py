"""Property-based tests on the coalescer and the full adapter.

The load-bearing invariant of the whole paper reproduction: whatever
the index stream and configuration, the adapter delivers exactly
``vec[indices]`` in order, and its wide-access count never exceeds the
no-coalescer count.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axipack import fast_indirect_stream, run_indirect_stream
from repro.axipack.fastmodel import coalesce_window_exact
from repro.config import mlp_config, nocoalescer_config, seq_config


@st.composite
def index_streams(draw):
    count = draw(st.integers(min_value=1, max_value=400))
    ncols = draw(st.integers(min_value=1, max_value=2000))
    kind = draw(st.sampled_from(["random", "walk", "constant", "ramp"]))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    if kind == "random":
        idx = rng.integers(0, ncols, count)
    elif kind == "walk":
        steps = rng.integers(-4, 5, count)
        idx = np.clip(np.cumsum(steps) + ncols // 2, 0, ncols - 1)
    elif kind == "constant":
        idx = np.full(count, rng.integers(0, ncols))
    else:
        idx = np.arange(count) % ncols
    return idx.astype(np.uint32)


@st.composite
def adapter_configs(draw):
    choice = draw(st.sampled_from(["nc", "mlp", "seq"]))
    if choice == "nc":
        return nocoalescer_config(lanes=draw(st.sampled_from([2, 4, 8])))
    window = draw(st.sampled_from([8, 16, 32, 64]))
    lanes = draw(st.sampled_from([2, 4, 8]))
    if window < lanes:
        window = lanes
    if choice == "mlp":
        return mlp_config(window, lanes=lanes)
    return seq_config(window, lanes=lanes)


@given(index_streams(), adapter_configs())
@settings(max_examples=40, deadline=None)
def test_adapter_delivers_gather_in_order(idx, config):
    """run_indirect_stream verifies output == vec[idx] internally and
    raises on mismatch — for arbitrary streams and configurations."""
    metrics = run_indirect_stream(idx, config, verify=True)
    assert metrics.count == len(idx)
    assert metrics.elem_txns <= len(idx)


@given(index_streams())
@settings(max_examples=30, deadline=None)
def test_coalescing_never_increases_accesses(idx):
    nc = fast_indirect_stream(idx, nocoalescer_config())
    for window in (8, 32, 128):
        coal = fast_indirect_stream(idx, mlp_config(window))
        assert coal.elem_txns <= nc.elem_txns


@given(
    st.lists(st.integers(0, 50), min_size=1, max_size=600),
    st.sampled_from([4, 8, 16, 64]),
)
@settings(max_examples=80, deadline=None)
def test_window_exact_bounds(blocks_list, window):
    """Wide accesses are bounded below by the distinct-block count
    divided by windows (can't beat one access per distinct run) and
    above by the request count."""
    blocks = np.asarray(blocks_list, dtype=np.int64)
    count, tags = coalesce_window_exact(blocks, window)
    assert count <= len(blocks)
    assert count >= 0
    # Every tag issued is a block of the stream.
    assert set(tags.tolist()) <= set(blocks.tolist())
    # At least ceil(distinct appearances) constrained: each window has
    # at most `window` entries, so coalescing cannot merge more than
    # that into one access.
    assert count * window + window >= len(np.unique(blocks))


@given(index_streams(), st.sampled_from([8, 16, 64]))
@settings(max_examples=25, deadline=None)
def test_seq_and_mlp_same_coalescing(idx, window):
    mlp = fast_indirect_stream(idx, mlp_config(window))
    seq = fast_indirect_stream(idx, seq_config(window))
    assert mlp.elem_txns == seq.elem_txns
    assert seq.cycles >= mlp.cycles
