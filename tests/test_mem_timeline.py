"""Bank-state timeline: unit contract + differential vs the cycle
channel.

The differential tier is the acceptance gate for the timeline
subsystem: replaying a transaction stream through
:func:`repro.mem.timeline.service_timeline` must land within
``TIMELINE_TOLERANCE`` of driving the same stream through the
cycle-accurate FR-FCFS :class:`repro.mem.dram.DramChannel` — on the
matrix suite's real warp-tag streams *and* on adversarial bank/row
patterns — and must track the channel strictly tighter than the legacy
two-term bound (:func:`repro.mem.timeline.analytic_dram_bound`) does
on the same streams.

Tolerances (referenced by README/ARCHITECTURE):

* suite streams (coalesced warp tags, raw MLPnc block streams) sit
  within a few percent of the channel (bus-bound regime);
* adversarial streams (uniform random banks/rows, single-bank row
  hammer, two-row ping-pong) stay within ``TIMELINE_TOLERANCE`` =
  ratio in [0.70, 1.35] — the queue-serial replay is conservative-low
  on pure activate chains (no t_RP/t_RCD modelling) and
  conservative-high on scattered traffic (whole-window barriers);
* the legacy bound misses the same adversarial set by up to ~19x
  (it prices reorderable row ping-pong as a full activate chain), so
  the "tighter than the analytic bound" assertion has real margin.
"""

import math

import numpy as np
import pytest

from repro.config import DramConfig
from repro.mem.backing_store import BackingStore
from repro.mem.dram import DramChannel
from repro.mem.multichannel import MultiChannelMemory
from repro.mem.request import MemRequest
from repro.mem.timeline import (
    TimelineResult,
    analytic_dram_bound,
    service_timeline,
)
from repro.sim.clock import Simulator

#: Declared differential tolerance: timeline service cycles vs the
#: cycle-accurate channel, as a ratio band over every stream in the
#: differential set.  The legacy analytic bound violates this band by
#: more than an order of magnitude on the reorderable streams.
TIMELINE_TOLERANCE = (0.70, 1.35)


def drive_channel(blocks, dram: DramConfig | None = None) -> int:
    """Push one read per wide block through a DramChannel, respecting
    queue backpressure; returns the cycle the last response arrived."""
    dram = dram or DramConfig()
    blocks = np.asarray(blocks, dtype=np.int64)
    store = BackingStore(int(blocks.max() + 1) * dram.access_bytes + 4096)
    channel = DramChannel(store, dram)
    sim = Simulator([channel])
    issued = done = 0
    count = len(blocks)
    while done < count:
        while issued < count and channel.req.can_push():
            channel.req.push(
                MemRequest(
                    addr=int(blocks[issued]) * dram.access_bytes,
                    nbytes=dram.access_bytes,
                )
            )
            issued += 1
        sim.step()
        while channel.rsp.can_pop():
            channel.rsp.pop()
            done += 1
    return sim.cycle


def suite_streams(matrices, max_nnz=12_000, nc_budget=3000):
    """The streams the fast model actually prices: MLP256 warp tags and
    raw (coalescer-less) block streams of real suite matrices."""
    from repro.axipack.fastmodel import analyze_stream, coalesce_window_exact
    from repro.axipack.streams import matrix_index_stream
    from repro.sparse.suite import get_matrix

    streams = {}
    for name in matrices:
        indices = matrix_index_stream(get_matrix(name, max_nnz), "sell")
        blocks = analyze_stream(indices, 8).blocks
        _, tags = coalesce_window_exact(blocks, 256)
        streams[f"{name}-mlp256"] = tags
        streams[f"{name}-mlpnc"] = blocks[:nc_budget]
    return streams


def adversarial_streams(dram: DramConfig):
    """Bank/row patterns that separate the timeline from the legacy
    bound: scattered traffic, a single-bank row hammer, and a
    reorderable two-row ping-pong."""
    rng = np.random.default_rng(11)
    bank_stride = dram.num_banks * dram.blocks_per_row
    return {
        "uniform-random": rng.integers(0, 1 << 20, 4000).astype(np.int64),
        "single-bank-hammer": np.arange(1500, dtype=np.int64) * bank_stride,
        "two-row-pingpong": np.tile(
            np.array([0, bank_stride], dtype=np.int64), 800
        ),
    }


class TestTimelineContract:
    def test_empty_stream(self):
        result = service_timeline(np.empty(0, dtype=np.int64), DramConfig())
        assert result.cycles == 0
        assert result.transactions == 0
        assert (result.occupancy() == 0.0).all()

    def test_queue_depth_validated(self):
        with pytest.raises(ValueError):
            service_timeline(np.zeros(4, dtype=np.int64), DramConfig(), 0)

    def test_result_accounting(self):
        dram = DramConfig()
        blocks = np.arange(500, dtype=np.int64)
        result = service_timeline(blocks, dram)
        assert isinstance(result, TimelineResult)
        assert result.row_hits + result.activates == 500
        assert result.activates == result.cold_activates + result.row_conflicts
        assert result.queue_windows == math.ceil(500 / (2 * dram.queue_depth))
        assert 0.0 <= result.row_hit_rate <= 1.0
        assert result.bank_busy.sum() > 0

    def test_sequential_stream_is_bus_bound(self):
        dram = DramConfig()
        result = service_timeline(np.arange(1000, dtype=np.int64), dram)
        assert result.cycles == 1000 * dram.t_burst
        assert result.row_hit_rate > 0.9

    def test_smaller_queue_is_never_faster(self):
        """Shrinking the reorder horizon can only lose merges: service
        time is monotone non-increasing in queue depth."""
        dram = DramConfig()
        rng = np.random.default_rng(5)
        blocks = rng.integers(0, 1 << 16, 3000).astype(np.int64)
        cycles = [
            service_timeline(blocks, dram, depth).cycles
            for depth in (1, 4, 16, 32, 64)
        ]
        assert all(a >= b for a, b in zip(cycles, cycles[1:]))


class TestChannelStride:
    def test_stride_strips_channel_bits_before_bank_decode(self):
        dram = DramConfig()
        store = BackingStore(1 << 16)
        plain = DramChannel(store, dram)
        strided = DramChannel(store, dram, channel_stride=2)
        # Even blocks only (what channel 0 of a 2-way interleave sees):
        # the plain decode dilutes them onto the even banks, the strided
        # decode spreads them over all num_banks banks.
        addrs = [2 * i * dram.access_bytes for i in range(dram.num_banks)]
        assert len({plain.bank_of(a) for a in addrs}) == dram.num_banks // 2
        assert len({strided.bank_of(a) for a in addrs}) == dram.num_banks
        with pytest.raises(ValueError):
            DramChannel(store, dram, channel_stride=0)

    def test_multichannel_channels_use_the_stride(self):
        memory = MultiChannelMemory(BackingStore(1 << 16), num_channels=4)
        assert all(ch.channel_stride == 4 for ch in memory.channels)


class TestDifferentialVsCycleChannel:
    """The acceptance differential: timeline vs repro.mem.dram."""

    QUICK = ("pwtk", "hood", "G3_circuit")

    def _ratios(self, streams):
        dram = DramConfig()
        rows = []
        for name, blocks in streams.items():
            blocks = np.asarray(blocks, dtype=np.int64)
            sim_cycles = drive_channel(blocks, dram)
            timeline = service_timeline(blocks, dram).cycles
            legacy = analytic_dram_bound(blocks, dram)[0]
            rows.append((name, timeline / sim_cycles, legacy / sim_cycles))
        return rows

    def test_suite_streams_within_tolerance(self):
        lo, hi = TIMELINE_TOLERANCE
        for name, timeline_ratio, _ in self._ratios(suite_streams(self.QUICK)):
            assert lo <= timeline_ratio <= hi, (name, timeline_ratio)
            # Bus-bound regime: the timeline actually sits much closer.
            assert 0.90 <= timeline_ratio <= 1.05, (name, timeline_ratio)

    def test_adversarial_streams_within_tolerance_and_tighter_than_legacy(self):
        """The declared band holds on the bank/row stress set, where
        the legacy bound misses by an order of magnitude."""
        lo, hi = TIMELINE_TOLERANCE
        rows = self._ratios(adversarial_streams(DramConfig()))
        worst_timeline = max(abs(math.log(t)) for _, t, _ in rows)
        worst_legacy = max(abs(math.log(l)) for _, _, l in rows)
        for name, timeline_ratio, _ in rows:
            assert lo <= timeline_ratio <= hi, (name, timeline_ratio)
        assert worst_timeline < worst_legacy
        # The reorderable ping-pong is the legacy bound's blind spot.
        pingpong = dict((n, (t, l)) for n, t, l in rows)["two-row-pingpong"]
        assert pingpong[1] > 5.0 and lo <= pingpong[0] <= hi

    def test_whole_stream_set_tighter_than_legacy(self):
        """Across suite + adversarial streams together, the timeline's
        worst log-ratio error must beat the legacy bound's."""
        streams = suite_streams(self.QUICK)
        streams.update(adversarial_streams(DramConfig()))
        rows = self._ratios(streams)
        worst_timeline = max(abs(math.log(t)) for _, t, _ in rows)
        worst_legacy = max(abs(math.log(l)) for _, _, l in rows)
        assert worst_timeline < worst_legacy


@pytest.mark.slow
class TestDifferentialFullSuite:
    """Every suite matrix's streams through the differential (slow)."""

    def test_all_suite_matrices_within_tolerance(self):
        from repro.sparse.suite import list_matrices

        dram = DramConfig()
        lo, hi = TIMELINE_TOLERANCE
        for name, blocks in suite_streams(
            tuple(list_matrices()), nc_budget=2000
        ).items():
            blocks = np.asarray(blocks, dtype=np.int64)
            if blocks.size == 0:
                continue
            ratio = service_timeline(blocks, dram).cycles / drive_channel(
                blocks, dram
            )
            assert lo <= ratio <= hi, (name, ratio)
