"""Coalescer corner behaviours: watchdog, partial windows, carry,
refresh interplay, and failure injection on the cycle model."""

import numpy as np
import pytest

from repro.axipack.adapter import build_indirect_system
from repro.axipack import run_indirect_stream
from repro.config import (
    AdapterConfig,
    CoalescerConfig,
    DramConfig,
    mlp_config,
)
from repro.errors import SimulationError

from helpers import banded_stream


def _coalescer_stats(adapter):
    return adapter.element_path.stats


class TestWatchdogAndTails:
    def test_watchdog_flushes_final_warp(self):
        """The last open warp has no miss to force its issue — the
        watchdog must flush it or the stream never completes."""
        idx = np.full(64, 5, dtype=np.uint32)  # merges into few warps
        sim, adapter, _, _ = build_indirect_system(idx, mlp_config(64))
        sim.run_until(lambda: adapter.done, max_cycles=1_000_000)
        assert _coalescer_stats(adapter)["watchdog_issues"] >= 1

    def test_partial_window_on_ragged_tail(self):
        idx = banded_stream(100)  # 100 % 64 != 0
        sim, adapter, _, _ = build_indirect_system(idx, mlp_config(64))
        sim.run_until(lambda: adapter.done, max_cycles=1_000_000)
        assert _coalescer_stats(adapter)["partial_windows"] >= 1

    def test_aligned_stream_has_no_midstream_partials(self):
        """With the auto regulator timeout (2W), mid-stream windows
        always fill; only the tail may be partial."""
        idx = banded_stream(64 * 20)
        sim, adapter, _, _ = build_indirect_system(idx, mlp_config(64))
        sim.run_until(lambda: adapter.done, max_cycles=1_000_000)
        assert _coalescer_stats(adapter)["partial_windows"] == 0

    def test_tail_cycles_bounded_by_timeouts(self):
        """After the last element request, completion takes at most
        regulator + watchdog timeouts plus the DRAM round trip."""
        cc = CoalescerConfig(window=64, regulator_timeout=50, watchdog_timeout=50)
        config = AdapterConfig(coalescer=cc)
        idx = banded_stream(130)
        metrics = run_indirect_stream(idx, config)
        assert metrics.cycles < 130 * 3 + 50 + 50 + 400


class TestCshrCarry:
    def test_carry_merges_across_windows(self):
        """A run of identical blocks spanning several windows must
        produce far fewer wide accesses than windows."""
        idx = np.repeat(np.arange(4, dtype=np.uint32), 512)  # 4 blocks total
        metrics = run_indirect_stream(idx, mlp_config(64))
        # 2048 requests, 32 windows; without carry >= 32 accesses.
        # With carry and per-slot metadata budget (2048/64 = 32 per
        # slot), far fewer.
        assert metrics.elem_txns <= 12

    def test_metadata_budget_splits_giant_warps(self):
        """With a tiny offsets budget, the same stream needs more
        wide accesses (per-slot cap forces warp splits)."""
        idx = np.repeat(np.arange(4, dtype=np.uint32), 512)
        small = AdapterConfig(
            coalescer=CoalescerConfig(window=64, offsets_total_entries=64)
        )
        cfg_metrics = run_indirect_stream(idx, small)
        big_metrics = run_indirect_stream(idx, mlp_config(64))
        assert cfg_metrics.elem_txns >= big_metrics.elem_txns


class TestRefreshInterplay:
    def test_refresh_happens_and_stream_survives(self):
        dram = DramConfig(t_refi=500, t_rfc=80)
        idx = banded_stream(2000)
        sim, adapter, mem, _ = build_indirect_system(idx, mlp_config(64), dram)
        sim.run_until(lambda: adapter.done, max_cycles=2_000_000)
        assert mem.stats["refreshes"] >= 1

    def test_refresh_slows_the_stream(self):
        idx = banded_stream(3000)
        fast_dram = DramConfig(t_refi=0, t_rfc=0)
        slow_dram = DramConfig(t_refi=400, t_rfc=200)  # brutal refresh
        base = run_indirect_stream(idx, mlp_config(64), fast_dram)
        slowed = run_indirect_stream(idx, mlp_config(64), slow_dram)
        assert slowed.cycles > base.cycles


class TestFailureInjection:
    def test_vector_shorter_than_indices_rejected(self):
        idx = np.array([10], dtype=np.uint32)
        with pytest.raises(SimulationError):
            build_indirect_system(idx, mlp_config(8), vec=np.zeros(5))

    def test_empty_stream_rejected(self):
        with pytest.raises(SimulationError):
            build_indirect_system(np.empty(0, dtype=np.uint32), mlp_config(8))

    def test_verification_catches_corruption(self):
        """If DRAM data is corrupted mid-flight, verify=True must
        fail loudly rather than return silently wrong results."""
        idx = banded_stream(300)
        sim, adapter, mem, expected = build_indirect_system(idx, mlp_config(16))
        # Corrupt the element region after wiring but before running.
        mem.store.data[:] = 0
        sim.run_until(lambda: adapter.done, max_cycles=1_000_000)
        got = np.asarray(adapter.output)
        assert not np.array_equal(got, expected)

    def test_deterministic_across_runs(self):
        idx = banded_stream(800)
        a = run_indirect_stream(idx, mlp_config(32))
        b = run_indirect_stream(idx, mlp_config(32))
        assert a.cycles == b.cycles
        assert a.elem_txns == b.elem_txns
