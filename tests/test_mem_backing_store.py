"""Backing store: allocation, typed access, bounds."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.mem.backing_store import BackingStore


def test_alloc_is_aligned():
    store = BackingStore(4096)
    a = store.alloc(10, align=64)
    b = store.alloc(10, align=64)
    assert a % 64 == 0
    assert b % 64 == 0
    assert b >= a + 10


def test_alloc_array_roundtrip():
    store = BackingStore(4096)
    values = np.arange(10, dtype=np.float64)
    base = store.alloc_array(values)
    assert np.array_equal(store.read_typed(base, 10, np.float64), values)


def test_read_block_is_a_copy():
    store = BackingStore(256)
    base = store.alloc_array(np.array([1, 2, 3, 4], dtype=np.uint8))
    block = store.read_block(base, 4)
    block[0] = 99
    assert store.read_block(base, 1)[0] == 1


def test_write_block_typed_views():
    store = BackingStore(256)
    base = store.alloc(64)
    store.write_typed(base, np.array([3.5, -1.25], dtype=np.float64))
    got = store.read_typed(base, 2, np.float64)
    assert got.tolist() == [3.5, -1.25]


def test_uint32_indices_layout():
    """Indices are stored little-endian 32 b as the paper specifies."""
    store = BackingStore(256)
    idx = np.array([1, 2, 0xDEADBEEF], dtype=np.uint32)
    base = store.alloc_array(idx)
    raw = store.read_block(base, 12)
    assert raw.view("<u4").tolist() == idx.tolist()


def test_out_of_range_read_rejected():
    store = BackingStore(128)
    with pytest.raises(MemoryModelError):
        store.read_block(120, 16)


def test_negative_access_rejected():
    store = BackingStore(128)
    with pytest.raises(MemoryModelError):
        store.read_block(-1, 4)


def test_exhaustion_raises():
    store = BackingStore(128)
    with pytest.raises(MemoryModelError):
        store.alloc(256)


def test_bytes_allocated_tracks_high_water():
    store = BackingStore(1024)
    store.alloc(100, align=64)
    assert store.bytes_allocated == 100


def test_invalid_size_rejected():
    with pytest.raises(MemoryModelError):
        BackingStore(0)
