"""HBM2 channel model: peak bandwidth, row behaviour, FR-FCFS,
ordering, and data integrity."""

import numpy as np
import pytest

from repro.config import DramConfig
from repro.mem.backing_store import BackingStore
from repro.mem.dram import DramChannel
from repro.mem.ideal import IdealMemory
from repro.mem.request import MemRequest
from repro.sim.clock import Simulator


def _make_channel(size=1 << 20, **kwargs):
    store = BackingStore(size)
    config = DramConfig(**kwargs)
    dram = DramChannel(store, config)
    sim = Simulator([dram])
    return store, dram, sim


def _drain(dram, sim, expected, max_cycles=100_000):
    got = []
    sim.run_until(lambda: len(dram.rsp) >= expected or not dram.busy,
                  max_cycles=max_cycles)
    while dram.rsp.can_pop():
        got.append(dram.rsp.pop())
    return got


def test_read_returns_stored_data():
    store, dram, sim = _make_channel()
    base = store.alloc_array(np.arange(8, dtype=np.float64))
    dram.req.push(MemRequest(addr=base, nbytes=64))
    responses = _drain(dram, sim, 1)
    assert len(responses) == 1
    assert responses[0].data.view("<f8").tolist() == list(map(float, range(8)))


def test_write_then_read():
    store, dram, sim = _make_channel()
    base = store.alloc(64)
    payload = np.arange(64, dtype=np.uint8)
    dram.req.push(MemRequest(addr=base, nbytes=64, is_write=True, write_data=payload))
    sim.step(100)
    dram.req.push(MemRequest(addr=base, nbytes=64))
    responses = _drain(dram, sim, 2)
    reads = [r for r in responses if r.data is not None]
    assert len(reads) == 1
    assert np.array_equal(reads[-1].data, payload)


def test_sequential_stream_saturates_bus():
    """A long sequential read stream should reach ~t_burst cycles per
    transaction: the 32 GB/s ideal of Table I."""
    store, dram, sim = _make_channel()
    count = 512
    for i in range(count):
        while not dram.req.can_push():
            sim.step()
        dram.req.push(MemRequest(addr=i * 64, nbytes=64))
        sim.step()
    cycles0 = sim.cycle
    sim.run_until(lambda: not dram.busy, max_cycles=100_000)
    total = sim.cycle
    assert dram.stats["transactions"] == count
    # Bus-limited: 2 cycles per access, plus a small latency tail.
    assert total <= count * 2 + 200
    assert dram.row_hit_rate > 0.9


def test_random_stream_pays_activates():
    """Random rows must show a much lower row-hit rate and lower
    throughput than a sequential stream."""
    store, dram, sim = _make_channel(size=1 << 24)
    rng = np.random.default_rng(7)
    count = 256
    addrs = rng.integers(0, (1 << 24) // 64, count) * 64
    issued = 0
    while issued < count:
        if dram.req.can_push():
            dram.req.push(MemRequest(addr=int(addrs[issued]), nbytes=64))
            issued += 1
        sim.step()
    sim.run_until(lambda: not dram.busy, max_cycles=100_000)
    assert dram.row_hit_rate < 0.5
    assert dram.stats["row_misses"] + dram.stats["row_conflicts"] > count // 2


def test_fr_fcfs_prefers_row_hits():
    """With one open row and a conflicting request, pending row hits
    are served first even if younger."""
    store, dram, sim = _make_channel()
    config = dram.config
    # bank 0 row 0 : block 0 ; bank 0 row 1 : block num_banks*blocks_per_row
    conflict_block = config.num_banks * config.blocks_per_row
    dram.req.push(MemRequest(addr=0, nbytes=64))  # opens row 0
    sim.step(40)
    dram.req.push(MemRequest(addr=conflict_block * 64, nbytes=64))  # row 1 (older)
    dram.req.push(MemRequest(addr=0, nbytes=64))  # row 0 hit (younger)
    responses = _drain(dram, sim, 3)
    # The row-0 hit (seq of third request) must complete before the
    # row-1 conflict.
    finish_by_addr = {}
    for r in responses:
        finish_by_addr.setdefault(r.request.addr, r.finish_cycle)
    assert finish_by_addr[0] < finish_by_addr[conflict_block * 64]


def test_bank_parallelism_hides_activates():
    """Interleaving across banks should be much faster than hammering
    one bank with row misses."""
    # Same-bank row conflicts: consecutive rows in one bank.
    store, dram, sim = _make_channel()
    stride_same_bank = dram.config.num_banks * dram.config.blocks_per_row * 64
    issued = 0
    while issued < 64:
        if dram.req.can_push():
            dram.req.push(MemRequest(addr=issued * stride_same_bank, nbytes=64))
            issued += 1
        sim.step()
    sim.run_until(lambda: not dram.busy, max_cycles=200_000)
    same_bank_cycles = sim.cycle

    store2, dram2, sim2 = _make_channel()
    issued = 0
    while issued < 64:
        if dram2.req.can_push():
            dram2.req.push(MemRequest(addr=issued * 64, nbytes=64))
            issued += 1
        sim2.step()
    sim2.run_until(lambda: not dram2.busy, max_cycles=200_000)
    spread_cycles = sim2.cycle
    assert same_bank_cycles > 2 * spread_cycles


def test_utilization_reporting():
    store, dram, sim = _make_channel()
    for i in range(16):
        dram.req.push(MemRequest(addr=i * 64, nbytes=64))
    sim.run_until(lambda: not dram.busy, max_cycles=10_000)
    util = dram.utilization(sim.cycle)
    assert 0.0 < util <= 1.0
    assert dram.busy_bus_cycles == 16 * 2


def test_ideal_memory_fixed_latency_and_order():
    store = BackingStore(1 << 16)
    base = store.alloc_array(np.arange(32, dtype=np.float64))
    mem = IdealMemory(store, latency=10)
    sim = Simulator([mem])
    mem.req.push(MemRequest(addr=base, nbytes=64))
    mem.req.push(MemRequest(addr=base + 64, nbytes=64))
    sim.run_until(lambda: len(mem.rsp) == 2, max_cycles=1000)
    first = mem.rsp.pop()
    second = mem.rsp.pop()
    assert first.request.addr == base
    assert second.request.addr == base + 64
    assert second.finish_cycle - first.finish_cycle == mem.config.t_burst


def test_address_mapping_block_interleaves_banks():
    _, dram, _ = _make_channel()
    banks = [dram.bank_of(block * 64) for block in range(dram.config.num_banks * 2)]
    assert banks[: dram.config.num_banks] == list(range(dram.config.num_banks))
    assert banks[dram.config.num_banks] == 0  # wraps around
