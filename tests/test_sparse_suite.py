"""The 20-matrix paper suite: metadata, scaling, memoisation."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.sparse.suite import (
    DEFAULT_MAX_NNZ,
    FIG4_MATRICES,
    FIG6B_MATRICES,
    PAPER_SUITE,
    get_matrix,
    get_spec,
    list_matrices,
    suite_summary,
)


def test_exactly_twenty_matrices():
    assert len(PAPER_SUITE) == 20
    assert len(list_matrices()) == 20


def test_fig4_subset_is_in_suite():
    assert len(FIG4_MATRICES) == 6
    for name in FIG4_MATRICES:
        assert name in list_matrices()


def test_fig6b_subset():
    assert set(FIG6B_MATRICES) == {"af_shell10", "pwtk", "BenElechi1"}


def test_published_shape_ranges_match_paper():
    """Sec. III: columns from 1.4k to 6.8M."""
    ns = [spec.n for spec in PAPER_SUITE]
    assert min(ns) == 1_440  # msc01440
    assert max(ns) == 6_815_744  # adaptive


def test_scaling_respects_budget():
    m = get_matrix("af_shell10", max_nnz=30_000)
    assert m.nnz <= 30_000 * 1.6  # generator overshoot tolerance
    assert m.nrows < get_spec("af_shell10").n


def test_small_matrices_not_scaled():
    spec = get_spec("msc01440")
    m = get_matrix("msc01440", max_nnz=DEFAULT_MAX_NNZ)
    assert m.nrows == spec.n


def test_scaling_preserves_avg_row_length():
    spec = get_spec("pwtk")
    m = get_matrix("pwtk", max_nnz=40_000)
    assert m.avg_row_length == pytest.approx(spec.avg_row, rel=0.35)


def test_memoisation_returns_same_object():
    a = get_matrix("fv1")
    b = get_matrix("fv1")
    assert a is b


def test_unknown_matrix_rejected():
    with pytest.raises(ExperimentError):
        get_matrix("not_a_matrix")


def test_all_matrices_instantiate_small():
    for name in list_matrices():
        m = get_matrix(name, max_nnz=8_000)
        assert m.nnz > 0
        assert m.nrows == m.ncols


def test_suite_summary_rows():
    rows = suite_summary(max_nnz=8_000)
    assert len(rows) == 20
    for row in rows:
        assert row["published_nnz"] >= row["nnz"] * 0.5 or row["published_nnz"] <= 200_000


def test_structure_classes_cover_paper_spread():
    kinds = {spec.kind for spec in PAPER_SUITE}
    assert {"banded_fem", "stencil", "circuit", "mesh", "kkt", "dense_block"} <= kinds
