"""Configuration dataclasses (paper Table I defaults and validation)."""

import pytest

from repro.config import (
    AdapterConfig,
    BaselineConfig,
    CoalescerConfig,
    DramConfig,
    VpcConfig,
    mlp_config,
    nocoalescer_config,
    seq_config,
    variant_config,
    with_window,
    PAPER_ADAPTER_VARIANTS,
)
from repro.errors import ConfigError
from repro.units import KIB, MIB


class TestTableIDefaults:
    """The defaults must match the paper's Table I."""

    def test_adapter_index_queue_depth(self):
        assert AdapterConfig().index_queue_depth == 256

    def test_sizer_queue_depth(self):
        assert CoalescerConfig().sizer_queue_depth == 2

    def test_hitmap_queue_depth(self):
        assert CoalescerConfig().hitmap_queue_depth == 128

    def test_offsets_queue_is_2048_over_w(self):
        for window in (64, 128, 256):
            cc = CoalescerConfig(window=window)
            assert cc.offsets_queue_depth == 2048 // window

    def test_vpc_has_16_lanes_1ghz_384k_l2(self):
        vpc = VpcConfig()
        assert vpc.lanes == 16
        assert vpc.freq_hz == 1e9
        assert vpc.l2_spm_bytes == 384 * KIB

    def test_dram_is_32gbps_hbm2_channel(self):
        dram = DramConfig()
        assert dram.peak_bandwidth_gbps == pytest.approx(32.0)
        assert dram.access_bytes == 64  # 512 b granularity

    def test_baseline_llc_is_1mib(self):
        assert BaselineConfig().llc_bytes == 1 * MIB


class TestValidation:
    def test_window_must_be_power_of_two(self):
        with pytest.raises(ConfigError):
            CoalescerConfig(window=100)

    def test_window_must_cover_lanes(self):
        with pytest.raises(ConfigError):
            AdapterConfig(lanes=8, coalescer=CoalescerConfig(window=4))

    def test_lanes_power_of_two(self):
        with pytest.raises(ConfigError):
            AdapterConfig(lanes=6)

    def test_dram_burst_consistency(self):
        with pytest.raises(ConfigError):
            DramConfig(t_burst=3)

    def test_llc_geometry(self):
        with pytest.raises(ConfigError):
            BaselineConfig(llc_bytes=1000)  # not divisible into sets


class TestVariants:
    def test_all_paper_variants_exist(self):
        for label in ("MLPnc", "MLP8", "MLP16", "MLP32", "MLP64", "MLP128",
                      "MLP256", "SEQ256"):
            assert label in PAPER_ADAPTER_VARIANTS

    def test_mlpnc_has_no_coalescer(self):
        assert nocoalescer_config().coalescer is None
        assert not nocoalescer_config().has_coalescer

    def test_mlp_is_parallel(self):
        cfg = mlp_config(64)
        assert cfg.coalescer is not None and cfg.coalescer.parallel
        assert cfg.coalescer.window == 64

    def test_seq_is_sequential(self):
        cfg = seq_config(256)
        assert cfg.coalescer is not None and not cfg.coalescer.parallel

    def test_variant_config_parses_arbitrary_windows(self):
        assert variant_config("MLP512").coalescer.window == 512
        assert not variant_config("SEQ32").coalescer.parallel

    def test_variant_config_rejects_garbage(self):
        with pytest.raises(ConfigError):
            variant_config("FOO9")

    def test_with_window(self):
        cfg = with_window(mlp_config(64), 128)
        assert cfg.coalescer.window == 128

    def test_with_window_rejects_no_coalescer(self):
        with pytest.raises(ConfigError):
            with_window(nocoalescer_config(), 64)


class TestDerivedQuantities:
    def test_indices_per_block(self):
        assert AdapterConfig().indices_per_block == 16  # 64 B / 4 B

    def test_elements_per_beat(self):
        assert AdapterConfig().elements_per_beat == 8  # 512 b / 64 b

    def test_auto_timeouts_scale_with_window(self):
        cc = CoalescerConfig(window=64)
        assert cc.regulator_timeout == 128
        assert cc.watchdog_timeout == 128

    def test_explicit_timeouts_respected(self):
        cc = CoalescerConfig(window=64, regulator_timeout=17, watchdog_timeout=19)
        assert cc.regulator_timeout == 17
        assert cc.watchdog_timeout == 19

    def test_l2_array_bytes_six_way_split(self):
        vpc = VpcConfig()
        assert vpc.l2_array_bytes == 384 * KIB // 6

    def test_blocks_per_row(self):
        assert DramConfig().blocks_per_row == 16  # 1 KiB row / 64 B
