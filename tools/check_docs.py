#!/usr/bin/env python3
"""Markdown link and anchor checker for the repo docs.

Usage::

    python tools/check_docs.py README.md ARCHITECTURE.md EXPERIMENTS.md

For every ``[text](target)`` in the given files:

* relative file targets must exist on disk (resolved against the
  containing file's directory);
* ``#fragment`` targets — same-file or on a linked markdown file —
  must match a heading's GitHub-style anchor slug;
* ``http(s)``/``mailto`` targets are skipped (no network access here).

Exits non-zero listing every broken link.  CI's docs-drift job runs
this next to ``python -m repro report --quick --check``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: [text](target) — target captured without surrounding whitespace;
#: images (![alt](src)) are checked the same way.
_LINK = re.compile(r"\[[^\]]*\]\(\s*([^)\s]+)\s*\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*)$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def anchor_slug(heading: str) -> str:
    """GitHub's heading→anchor rule: lowercase, drop punctuation,
    spaces to hyphens (links like ``[x](#the-reporting-layer)``)."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path: Path) -> set[str]:
    """Every anchor a markdown file exposes (fenced code excluded)."""
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            anchors.add(anchor_slug(match.group(2)))
    return anchors


def iter_links(path: Path):
    """(target, line number) for every markdown link outside code."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield match.group(1), lineno


def check_file(path: Path) -> list[str]:
    problems = []
    for target, lineno in iter_links(path):
        where = f"{path}:{lineno}"
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
            continue
        target_path, _, fragment = target.partition("#")
        resolved = path if not target_path else (path.parent / target_path)
        if not resolved.exists():
            problems.append(f"{where}: broken link target {target_path!r}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_anchors(resolved):
                problems.append(
                    f"{where}: no heading for anchor #{fragment} in {resolved}"
                )
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    problems: list[str] = []
    for name in argv:
        path = Path(name)
        if not path.is_file():
            problems.append(f"{name}: file not found")
            continue
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"docs ok: {len(argv)} files, links and anchors resolve")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
