#!/usr/bin/env python3
"""Render an NDJSON trace file into human-readable tables.

Usage::

    python -m repro corpus run --quick --trace trace.ndjson
    python tools/trace_summary.py trace.ndjson [--min-coverage 95]

Three sections:

* **per-phase wall-time** — spans grouped by name: call count, total
  and mean duration, and share of the root spans' wall-time;
* **coverage** — the fraction of each root span's duration covered by
  the union of its direct children's intervals (span ``ts`` is wall
  clock, so worker spans shipped across processes land on the same
  timeline).  ``--min-coverage P`` exits 1 below P percent — the CI
  gate that keeps the instrumentation honest;
* **cycle attribution** — the profiler's per-component tick/advance/
  bulk bins from the trace's final ``profile`` event, when present.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_trace(path: Path) -> tuple[list[dict], list[dict]]:
    """``(spans, profiles)`` from one NDJSON trace file."""
    spans: list[dict] = []
    profiles: list[dict] = []
    with path.open() as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{path}:{lineno}: not valid JSON: {exc}")
            if record.get("event") == "span":
                spans.append(record)
            elif record.get("event") == "profile":
                profiles.append(record)
    return spans, profiles


def _union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by a set of (start, end) intervals."""
    covered = 0.0
    end_max = None
    for start, end in sorted(intervals):
        if end_max is None or start > end_max:
            covered += end - start
            end_max = end
        elif end > end_max:
            covered += end - end_max
            end_max = end
    return covered


def coverage(spans: list[dict]) -> float | None:
    """Fraction of root wall-time covered by direct children (None
    when the trace has no root span of nonzero duration)."""
    roots = [s for s in spans if s.get("parent") is None]
    total = sum(s["dur_s"] for s in roots)
    if not roots or total <= 0:
        return None
    children: dict[str, list[tuple[float, float]]] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            children.setdefault(parent, []).append(
                (span["ts"], span["ts"] + span["dur_s"])
            )
    covered = 0.0
    for root in roots:
        lo, hi = root["ts"], root["ts"] + root["dur_s"]
        clipped = [
            (max(start, lo), min(end, hi))
            for start, end in children.get(root["span"], [])
            if end > lo and start < hi
        ]
        covered += _union_length(clipped)
    return covered / total


def phase_table(spans: list[dict]) -> list[dict]:
    """Per-span-name aggregate rows, longest total first."""
    phases: dict[str, dict] = {}
    root_total = sum(
        s["dur_s"] for s in spans if s.get("parent") is None
    )
    for span in spans:
        row = phases.setdefault(
            span["name"], {"phase": span["name"], "count": 0, "total_s": 0.0}
        )
        row["count"] += 1
        row["total_s"] += span["dur_s"]
    rows = sorted(phases.values(), key=lambda r: -r["total_s"])
    for row in rows:
        row["mean_s"] = row["total_s"] / row["count"]
        row["share"] = (
            row["total_s"] / root_total if root_total > 0 else 0.0
        )
    return rows


def _print_table(rows: list[dict], columns: list[tuple[str, str]]) -> None:
    formatted = [
        {
            key: (f"{row[key]:.4f}" if spec == "f"
                  else f"{row[key]:.1%}" if spec == "%"
                  else str(row[key]))
            for key, spec in columns
        }
        for row in rows
    ]
    widths = {
        key: max(len(key), *(len(row[key]) for row in formatted))
        for key, _ in columns
    }
    header = "  ".join(key.ljust(widths[key]) for key, _ in columns)
    print(header)
    print("  ".join("-" * widths[key] for key, _ in columns))
    for row in formatted:
        print("  ".join(row[key].ljust(widths[key]) for key, _ in columns))


def render(path: Path, min_coverage: float | None) -> int:
    spans, profiles = load_trace(path)
    if not spans:
        print(f"{path}: no spans recorded")
        return 0 if min_coverage is None else 1
    traces = {s["trace"] for s in spans}
    roots = [s for s in spans if s.get("parent") is None]
    wall = sum(s["dur_s"] for s in roots)
    print(f"trace file : {path}")
    print(
        f"spans      : {len(spans)} across {len(traces)} trace(s), "
        f"{len(roots)} root(s), {wall:.3f}s root wall-time"
    )
    print()
    print("per-phase wall-time")
    _print_table(
        phase_table(spans),
        [
            ("phase", "s"),
            ("count", "s"),
            ("total_s", "f"),
            ("mean_s", "f"),
            ("share", "%"),
        ],
    )

    share = coverage(spans)
    print()
    if share is None:
        print("coverage   : n/a (no root span with nonzero duration)")
    else:
        print(
            f"coverage   : {share:.1%} of root wall-time attributed to "
            "direct child spans"
        )

    for profile in profiles:
        bins = profile.get("bins", {})
        if not bins:
            continue
        rows = [
            {
                "component": component,
                "tick": actions.get("tick", 0),
                "advance": actions.get("advance", 0),
                "bulk": actions.get("bulk", 0),
                "total": sum(actions.values()),
            }
            for component, actions in bins.items()
        ]
        rows.sort(key=lambda r: (-r["total"], r["component"]))
        print()
        print("cycle attribution (simulated cycles by component x action)")
        _print_table(
            rows,
            [
                ("component", "s"),
                ("tick", "s"),
                ("advance", "s"),
                ("bulk", "s"),
                ("total", "s"),
            ],
        )

    if min_coverage is not None:
        if share is None or share * 100 < min_coverage:
            got = "n/a" if share is None else f"{share:.1%}"
            print(
                f"\nFAIL: coverage {got} below the {min_coverage:.0f}% gate",
                file=sys.stderr,
            )
            return 1
        print(f"\nOK: coverage meets the {min_coverage:.0f}% gate")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="NDJSON trace file")
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=None,
        metavar="PCT",
        help="exit 1 unless direct-child coverage of the root spans "
        "reaches PCT percent",
    )
    args = parser.parse_args(argv)
    return render(args.trace, args.min_coverage)


if __name__ == "__main__":
    raise SystemExit(main())
