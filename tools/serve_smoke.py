#!/usr/bin/env python3
"""CI smoke test for the sweep service, driven through ServeClient.

Starts ``python -m repro serve`` on an ephemeral port, then exercises
the full client/server cache ladder with :class:`repro.serve.client.
ServeClient`: the first quick-scale sweep computes on the server, a
repeated ``submit`` is answered from the client's job-key memo with no
round trip, and forcing the round trip (``reuse=False``) hits the
server's response cache.  Finally sends SIGTERM and requires a clean
exit (code 0).  This covers the pieces the in-process tests cannot:
the real subprocess lifecycle, the bound socket, and the signal
handler — plus the shipped client against a real server.

Usage (from the repo root)::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import ServeClient  # noqa: E402 - path bootstrap above

STARTUP_TIMEOUT_S = 30
SHUTDOWN_TIMEOUT_S = 10
SWEEP = {
    "matrices": "msc01440,pwtk",
    "variants": "MLPnc,MLP64",
    "max_nnz": 12_000,
}


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--workers", "1"],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        line = server.stdout.readline()
        match = re.search(r"serving on http://[\w.]+:(\d+)", line)
        if not match:
            raise AssertionError(f"no bind line from server, got {line!r}")
        client = ServeClient(f"http://127.0.0.1:{int(match.group(1))}")
        deadline = time.monotonic() + STARTUP_TIMEOUT_S
        while not client.healthy():
            if time.monotonic() > deadline:
                raise AssertionError("server never became healthy")
            time.sleep(0.2)

        # Stream the first sweep: events in protocol order, computed.
        events = list(client.stream(SWEEP))
        assert events[0]["event"] == "accepted", events
        assert events[-1]["event"] == "done", events
        assert events[-1]["source"] == "computed", events[-1]
        assert events[-1]["row_count"] == 4, events[-1]
        rows = [r for e in events if e["event"] == "rows" for r in e["rows"]]

        # Collected submit hits the server cache (stream() bypasses the
        # client memo), the repeat is answered from the memo without a
        # round trip, and reuse=False forces the wire again.
        computed = client.submit(SWEEP)
        memoized = client.submit(SWEEP)
        wired = client.submit(SWEEP, reuse=False)
        assert computed["source"] == "cache", computed["source"]
        assert memoized["source"] == "client", memoized["source"]
        assert wired["source"] == "cache", wired["source"]
        for result in (computed, memoized, wired):
            assert sorted(result["rows"], key=str) == sorted(rows, key=str)
        stats = client.stats()
        assert stats["jobs"]["response_hits"] >= 2, stats["jobs"]
        assert "trace" in stats and "metrics" in stats, sorted(stats)

        # The Prometheus exposition must carry at least one counter
        # from each layer: the serve front end and the engine that
        # computed the first sweep behind it.
        exposition = client.metrics()
        for needle in (
            "# TYPE repro_serve_requests_total counter",
            "repro_serve_requests_total ",
            "repro_serve_response_hits_total ",
            "repro_engine_groups_total ",
            "# TYPE repro_serve_request_seconds histogram",
            "repro_engine_workers 1",
        ):
            assert needle in exposition, f"{needle!r} missing from /metrics"

        server.send_signal(signal.SIGTERM)
        code = server.wait(timeout=SHUTDOWN_TIMEOUT_S)
        assert code == 0, f"server exited {code}; stderr: {server.stderr.read()}"
        print(
            f"serve smoke OK: computed -> client memo -> server cache "
            f"({len(rows)} rows), /metrics exposed, clean SIGTERM exit"
        )
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


if __name__ == "__main__":
    raise SystemExit(main())
