#!/usr/bin/env python3
"""CI smoke test for the sweep service.

Starts ``python -m repro serve`` on an ephemeral port, posts the same
quick-scale sweep twice, asserts the second response is answered by
the response cache, then sends SIGTERM and requires a clean exit (code
0).  This exercises the pieces the in-process tests cannot: the real
subprocess lifecycle, the bound socket, and the signal handler.

Usage (from the repo root)::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
STARTUP_TIMEOUT_S = 30
SHUTDOWN_TIMEOUT_S = 10
SWEEP = {
    "matrices": "msc01440,pwtk",
    "variants": "MLPnc,MLP64",
    "max_nnz": 12_000,
}


def post_ndjson(port: int, path: str, payload: dict) -> list[dict]:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return [json.loads(line) for line in response.read().decode().splitlines()]


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--workers", "1"],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        line = server.stdout.readline()
        match = re.search(r"serving on http://[\w.]+:(\d+)", line)
        if not match:
            raise AssertionError(f"no bind line from server, got {line!r}")
        port = int(match.group(1))
        deadline = time.monotonic() + STARTUP_TIMEOUT_S
        while True:
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=5
                ) as response:
                    assert json.loads(response.read()) == {"ok": True}
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.2)

        first = post_ndjson(port, "/sweep", SWEEP)
        second = post_ndjson(port, "/sweep", SWEEP)
        done_first = first[-1]
        done_second = second[-1]
        assert done_first["event"] == "done", first
        assert done_first["source"] == "computed", done_first
        assert done_first["row_count"] == 4, done_first
        assert done_second["source"] == "cache", done_second
        rows = [r for e in first if e["event"] == "rows" for r in e["rows"]]
        cached = [r for e in second if e["event"] == "rows" for r in e["rows"]]
        assert rows and sorted(rows, key=str) == sorted(cached, key=str)

        server.send_signal(signal.SIGTERM)
        code = server.wait(timeout=SHUTDOWN_TIMEOUT_S)
        assert code == 0, f"server exited {code}; stderr: {server.stderr.read()}"
        print(f"serve smoke OK: computed -> cache ({len(rows)} rows), clean SIGTERM exit")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


if __name__ == "__main__":
    raise SystemExit(main())
